#include "sim/event_queue.h"

namespace jtp::sim {

std::uint32_t EventQueue::acquire_slot() {
  std::uint32_t idx;
  if (free_head_ != kNpos) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNpos;
    ++slot_reuses_;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  if (heap_.size() + 1 > slots_high_water_)
    slots_high_water_ = heap_.size() + 1;
  return idx;
}

void EventQueue::heap_insert(const HeapNode& n) {
  heap_.emplace_back();  // place() overwrites; reserves the position
  sift_up(static_cast<std::uint32_t>(heap_.size() - 1), n);
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn.reset();
  s.heap_pos = kNpos;
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = idx;
}

void EventQueue::cancel(EventId id) {
  const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return;
  Slot& s = slots_[idx];
  if (s.gen != gen || s.heap_pos == kNpos) return;  // fired or cancelled
  heap_remove(s.heap_pos);
  release_slot(idx);
}

EventQueue::Event EventQueue::pop() {
  assert(!heap_.empty());
  const std::uint32_t idx = heap_[0].idx;
  Slot& s = slots_[idx];
  // The callback is moved out before the slot is recycled: executing it
  // may push new events, which can reuse (or reallocate) the slot.
  Event ev{heap_[0].at, make_id(idx, s.gen), s.exec_owner, std::move(s.fn)};
  heap_remove(0);
  release_slot(idx);
  return ev;
}

void EventQueue::clear() {
  while (!heap_.empty()) {
    const std::uint32_t idx = heap_.back().idx;
    heap_.pop_back();
    release_slot(idx);
  }
}

PoolStats EventQueue::slot_stats() const {
  PoolStats st;
  st.capacity = slots_.size();
  st.in_use = heap_.size();
  st.high_water = slots_high_water_;
  st.reuses = slot_reuses_;
  st.heap_allocs = slots_.size();  // each slot was created exactly once
  return st;
}

void EventQueue::heap_remove(std::uint32_t pos) {
  assert(pos < heap_.size());
  const HeapNode last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail
  // The moved element may violate either direction.
  if (pos > 0 && before(last, heap_[(pos - 1) / 4])) {
    sift_up(pos, last);
  } else {
    sift_down(pos, last);
  }
}

void EventQueue::sift_up(std::uint32_t pos, HeapNode n) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!before(n, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, n);
}

void EventQueue::sift_down(std::uint32_t pos, HeapNode n) {
  const std::uint32_t count = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t first = 4 * pos + 1;
    if (first >= count) break;
    std::uint32_t best = first;
    const std::uint32_t end = first + 4 < count ? first + 4 : count;
    for (std::uint32_t c = first + 1; c < end; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], n)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, n);
}

}  // namespace jtp::sim
