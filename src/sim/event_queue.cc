#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace jtp::sim {

EventId EventQueue::push(Time at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  cancelled_.push_back(false);
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id]) return;
  cancelled_[id] = true;
  if (live_ > 0) --live_;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

bool EventQueue::empty() const {
  drop_cancelled_head();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Event EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // priority_queue::top() is const; the entry is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  auto& top = const_cast<Entry&>(heap_.top());
  Event ev{top.at, top.id, std::move(top.fn)};
  heap_.pop();
  assert(live_ > 0);
  --live_;
  return ev;
}

}  // namespace jtp::sim
