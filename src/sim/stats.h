// Statistics utilities: streaming summaries, confidence intervals, EWMA,
// time-weighted averages, counters, and time series for traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.h"

namespace jtp::sim {

// Occupancy accounting shared by the hot-path freelist pools (event
// slots, SmallFn spill blocks, packet slots). `high_water` is the proof
// obligation for the zero-allocation claim: once a workload's working
// set is pooled, `heap_allocs` and `high_water` stop moving while
// `reuses` keeps counting — a growing `heap_allocs` under steady load
// means some path still allocates.
struct PoolStats {
  std::size_t capacity = 0;    // objects ever created by the pool
  std::size_t in_use = 0;      // currently handed out
  std::size_t high_water = 0;  // max simultaneous in_use
  std::uint64_t reuses = 0;       // acquisitions served from the freelist
  std::uint64_t heap_allocs = 0;  // acquisitions that had to allocate
  // Requests too large for the pool's block size, served by plain
  // operator new (must stay zero in steady state).
  std::uint64_t oversize_allocs = 0;

  std::size_t free_count() const { return capacity - in_use; }
};

// Streaming mean/variance via Welford's algorithm.
class Summary {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Half-width of the 95% confidence interval of the mean (Student t).
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha);
  void add(double x);
  void reset() { initialized_ = false; }
  void set_alpha(double alpha);
  double alpha() const { return alpha_; }
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  // Seeds the average without blending (used by the flip-flop filter).
  void force(double x) { value_ = x; initialized_ = true; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Time-weighted mean of a piecewise-constant signal (e.g. queue length).
class TimeWeighted {
 public:
  void update(Time now, double new_value);
  double mean(Time now) const;

 private:
  double value_ = 0.0;
  double area_ = 0.0;
  Time start_ = kTimeZero;
  Time last_ = kTimeZero;
  bool started_ = false;
};

// (time, value) series for plots/traces; supports windowed rate queries.
class TimeSeries {
 public:
  void add(Time t, double v) { points_.push_back({t, v}); }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  struct Point {
    Time t;
    double v;
  };
  const std::vector<Point>& points() const { return points_; }

  // Sum of values in (t - window, t].
  double sum_in_window(Time t, Time window) const;

  // Piecewise-constant resampling of cumulative-sum rate: events per second
  // over consecutive buckets of width `bucket`.
  std::vector<Point> bucket_rate(Time horizon, Time bucket) const;

 private:
  std::vector<Point> points_;
};

// Student-t 97.5% quantile for n-1 degrees of freedom (two-sided 95% CI).
double t_quantile_975(std::size_t df);

}  // namespace jtp::sim
