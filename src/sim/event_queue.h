// Discrete-event queue: pooled event slots indexed by a 4-ary min-heap.
//
// Events are ordered by (time, tie-key). push() draws the tie from an
// internal counter, so same-instant events fire in insertion order
// (FIFO) — deterministic across runs and platforms. push_keyed() lets
// the caller supply the tie explicitly; the sharded runner uses this to
// give every event a key that is independent of which shard computes it
// (owner-id ‖ per-owner sequence number), so the per-node execution
// order is reproduced exactly for any shard count. Each keyed event
// also carries an `exec_owner` tag that the Simulator restores as the
// scheduling context while the callback runs.
//
// Layout: every pending event lives in a slot of a freelist-recycled
// vector; the heap orders slot indices by (time, fifo#). Slots record
// their heap position, so cancel-by-id removes the event from the heap
// in O(log n) and recycles the slot immediately — there are no
// tombstones to drift past on pop, and no lazy sweep. EventIds carry a
// per-slot generation so a stale id (event already fired or cancelled)
// is recognized and ignored even after the slot has been reused.
// Callbacks are SmallFn (see small_fn.h): inline storage for every
// in-tree closure, pool-backed spill for larger ones — the steady-state
// schedule/cancel/pop cycle performs no heap allocation.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/small_fn.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace jtp::sim {

// Handle used to cancel a pending event. Encodes (generation, slot);
// cancelling an already-fired or unknown id is a harmless no-op.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue() { clear(); }

  // Enqueues `fn` to fire at absolute time `at`. Returns a cancellation id.
  // The tie key is drawn from the internal FIFO counter (insertion order).
  template <typename F>
  EventId push(Time at, F&& fn) {
    return push_keyed(at, next_fifo_, 0, std::forward<F>(fn));
  }

  // Enqueues `fn` at (at, tie) with an explicit tie key. Keys must be
  // unique per (at, tie) pair for the order to be deterministic; the
  // Simulator guarantees this by deriving ties from per-owner counters.
  template <typename F>
  EventId push_keyed(Time at, std::uint64_t tie, std::uint32_t exec_owner,
                     F&& fn) {
    const std::uint32_t idx = acquire_slot();
    Slot& s = slots_[idx];
    s.fn = SmallFn(std::forward<F>(fn), spill_);
    s.exec_owner = exec_owner;
    ++next_fifo_;
    heap_insert(HeapNode{at, tie, idx});
    return make_id(idx, s.gen);
  }

  // Same, for an already-built SmallFn (which must have been constructed
  // against this queue's spill()). A dedicated overload, not the
  // template: sizeof(SmallFn) > SmallFn::kInlineBytes, so the template
  // would wrap it in a second, spilled SmallFn.
  EventId push_keyed_fn(Time at, std::uint64_t tie, std::uint32_t exec_owner,
                        SmallFn&& fn) {
    const std::uint32_t idx = acquire_slot();
    Slot& s = slots_[idx];
    s.fn = std::move(fn);
    s.exec_owner = exec_owner;
    ++next_fifo_;
    heap_insert(HeapNode{at, tie, idx});
    return make_id(idx, s.gen);
  }

  // Removes a pending event. Cancelling an already-fired, already-
  // cancelled, or unknown id is a harmless no-op.
  void cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  // True if any pending event would execute as `owner`. Linear in the
  // pending-event count; used by the sharded network's migration
  // eligibility check, which runs at epoch barriers, never on the hot
  // path.
  bool has_owner(std::uint32_t owner) const {
    for (const HeapNode& n : heap_)
      if (slots_[n.idx].exec_owner == owner) return true;
    return false;
  }

  // Time of the earliest live event. Requires !empty().
  Time next_time() const {
    assert(!heap_.empty());
    return heap_[0].at;
  }

  // Pops and returns the earliest live event. Requires !empty().
  struct Event {
    Time at{};
    EventId id{};
    std::uint32_t exec_owner = 0;
    SmallFn fn;
  };
  Event pop();

  // Drops every pending event; slot and spill capacity is retained for
  // reuse (Simulator::reset).
  void clear();

  std::uint64_t total_scheduled() const { return next_fifo_; }

  // Freelist accounting for the event-slot pool and the callback spill
  // pool; the zero-allocation tests pin steady state with these.
  PoolStats slot_stats() const;
  const PoolStats& spill_stats() const { return spill_.stats(); }

  // The spill pool callers must build SmallFns against before handing
  // them to push_keyed_fn (see small_fn.h's lifetime contract).
  SpillPool& spill() { return spill_; }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  // The (time, tie-key) ordering key lives in the heap nodes themselves:
  // sift comparisons stay inside the heap array (no per-compare
  // indirection into the slot pool), which is what keeps a million-event
  // heap fast. Slots hold the callback plus the bookkeeping cancel needs.
  struct HeapNode {
    Time at{};
    std::uint64_t key = 0;
    std::uint32_t idx = 0;  // slot index
  };

  struct Slot {
    SmallFn fn;
    std::uint32_t heap_pos = kNpos;    // kNpos while free
    std::uint32_t gen = 0;             // bumped on each release
    std::uint32_t next_free = kNpos;   // freelist link while free
    std::uint32_t exec_owner = 0;      // restored as context on pop
  };

  static EventId make_id(std::uint32_t idx, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | idx;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  // (time, key) strict weak order; key ties are impossible.
  static bool before(const HeapNode& a, const HeapNode& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }

  void heap_insert(const HeapNode& n);
  void heap_remove(std::uint32_t pos);
  void sift_up(std::uint32_t pos, HeapNode n);
  void sift_down(std::uint32_t pos, HeapNode n);
  void place(std::uint32_t pos, const HeapNode& n) {
    heap_[pos] = n;
    slots_[n.idx].heap_pos = pos;
  }

  std::vector<Slot> slots_;
  std::vector<HeapNode> heap_;  // 4-ary min-heap keyed by (at, key)
  std::uint32_t free_head_ = kNpos;
  std::uint64_t next_fifo_ = 0;
  SpillPool spill_;

  std::size_t slots_high_water_ = 0;
  std::uint64_t slot_reuses_ = 0;
};

}  // namespace jtp::sim
