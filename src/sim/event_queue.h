// Discrete-event queue: a stable min-heap of timestamped callbacks.
//
// Events scheduled for the same instant fire in insertion order (FIFO),
// which keeps simulations deterministic across runs and platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace jtp::sim {

// Handle used to cancel a pending event. Cancellation is lazy: the event
// stays in the heap but is skipped when popped.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  // Enqueues `fn` to fire at absolute time `at`. Returns a cancellation id.
  EventId push(Time at, std::function<void()> fn);

  // Marks a pending event as cancelled. Cancelling an already-fired or
  // unknown id is a harmless no-op.
  void cancel(EventId id);

  bool empty() const;
  std::size_t size() const { return live_; }

  // Time of the earliest live event. Requires !empty().
  Time next_time() const;

  // Pops and returns the earliest live event. Requires !empty().
  struct Event {
    Time at{};
    EventId id{};
    std::function<void()> fn;
  };
  Event pop();

  std::uint64_t total_scheduled() const { return next_id_; }

 private:
  struct Entry {
    Time at{};
    EventId id{};
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::vector<bool> cancelled_;  // indexed by EventId
  std::size_t live_ = 0;
  EventId next_id_ = 0;
};

}  // namespace jtp::sim
