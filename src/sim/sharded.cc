#include "sim/sharded.h"

#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

namespace jtp::sim {

namespace {
constexpr Time kInf = std::numeric_limits<Time>::infinity();
}

bool ShardedRunner::SpscRing::try_push(Msg&& m) {
  const std::uint64_t t = tail_.load(std::memory_order_relaxed);
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  if (t - h == buf_.size()) return false;
  buf_[t % buf_.size()] = std::move(m);
  tail_.store(t + 1, std::memory_order_release);
  return true;
}

bool ShardedRunner::SpscRing::try_pop(Msg& out) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  const std::uint64_t t = tail_.load(std::memory_order_acquire);
  if (h == t) return false;
  out = std::move(buf_[h % buf_.size()]);
  head_.store(h + 1, std::memory_order_release);
  return true;
}

ShardedRunner::ShardedRunner(std::vector<Simulator*> sims, Config cfg)
    : sims_(std::move(sims)),
      cfg_(cfg),
      lb_(sims_.size()),
      exited_(sims_.size()),
      overflow_(sims_.size()) {
  if (sims_.size() < 2)
    throw std::invalid_argument("ShardedRunner: needs >= 2 shards");
  if (!(cfg_.lookahead > 0.0))
    throw std::invalid_argument("ShardedRunner: lookahead must be > 0");
  if (cfg_.ring_capacity == 0)
    throw std::invalid_argument("ShardedRunner: ring capacity must be > 0");
  rings_.resize(sims_.size() * sims_.size());
  for (std::size_t f = 0; f < sims_.size(); ++f)
    for (std::size_t t = 0; t < sims_.size(); ++t)
      if (f != t)
        rings_[f * sims_.size() + t] =
            std::make_unique<SpscRing>(cfg_.ring_capacity);
}

ShardedRunner::~ShardedRunner() = default;

void ShardedRunner::post(std::size_t from, std::size_t to, Time at,
                         std::uint64_t tie, std::uint32_t exec_owner,
                         std::function<void()> fn) {
  posted_.fetch_add(1, std::memory_order_relaxed);
  Msg m{at, tie, exec_owner, std::move(fn)};
  SpscRing& r = ring(from, to);
  while (!r.try_push(std::move(m))) {
    // A live receiver drains every iteration, so a full ring resolves;
    // an exited receiver never will — its stragglers (all stamped past
    // the current barrier, see header) take the overflow lane instead.
    if (exited_[to].load(std::memory_order_acquire) ||
        failed_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      overflow_[to].push_back(std::move(m));
      return;
    }
    std::this_thread::yield();
  }
}

bool ShardedRunner::drain(std::size_t i) {
  bool any = false;
  Msg m;
  for (std::size_t f = 0; f < sims_.size(); ++f) {
    if (f == i) continue;
    SpscRing& r = ring(f, i);
    while (r.try_pop(m)) {
      sims_[i]->at_keyed(m.at, m.tie, m.exec_owner, std::move(m.fn));
      any = true;
    }
  }
  return any;
}

void ShardedRunner::worker(std::size_t i, Time t) {
  Simulator& me = *sims_[i];
  const std::size_t K = sims_.size();
  int idle = 0;
  try {
    for (;;) {
      if (failed_.load(std::memory_order_relaxed)) break;
      // (1) Peers' bounds. The acquire pairs with their release publish,
      // ordering messages they pushed before publishing ahead of our
      // drain below.
      Time min_lb = kInf;
      for (std::size_t j = 0; j < K; ++j) {
        if (j == i) continue;
        const Time b = lb_[j].v.load(std::memory_order_acquire);
        if (b < min_lb) min_lb = b;
      }
      const Time horizon = min_lb + cfg_.lookahead;
      // (2) Inbound messages.
      bool progress = drain(i);
      // (3) Execute everything provably safe. Strictly below the
      // horizon: an event exactly at it could still be preceded by a
      // not-yet-sent message carrying the same timestamp.
      while (me.pending() && me.next_time() < horizon &&
             me.next_time() <= t) {
        me.step();
        progress = true;
      }
      // (4) Publish our own bound (monotone; release orders the pushes
      // from step 3 before it).
      const Time nxt = me.pending() ? me.next_time() : kInf;
      const Time pub = nxt < horizon ? nxt : horizon;
      if (pub > lb_[i].v.load(std::memory_order_relaxed)) {
        lb_[i].v.store(pub, std::memory_order_release);
        progress = true;
      }
      // (5) Done once nothing of ours remains at or below t and no peer
      // can still send anything at or below t.
      if ((!me.pending() || me.next_time() > t) && horizon > t) break;
      if (progress) {
        idle = 0;
      } else if (++idle > 64) {
        std::this_thread::yield();
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!error_) error_ = std::current_exception();
    failed_.store(true, std::memory_order_relaxed);
  }
  exited_[i].store(true, std::memory_order_release);
  lb_[i].v.store(kInf, std::memory_order_release);
}

void ShardedRunner::run_until(Time t) {
  const std::size_t K = sims_.size();
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error_ = nullptr;
  }
  failed_.store(false, std::memory_order_relaxed);
  for (std::size_t i = 0; i < K; ++i) {
    exited_[i].store(false, std::memory_order_relaxed);
    // Every future execution time is >= the shard's clock (which all
    // shards share after a previous barrier), so this is a sound floor.
    lb_[i].v.store(sims_[i]->now(), std::memory_order_relaxed);
  }

  std::vector<std::thread> threads;
  threads.reserve(K);
  for (std::size_t i = 0; i < K; ++i)
    threads.emplace_back([this, i, t] { worker(i, t); });
  for (auto& th : threads) th.join();

  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (error_) std::rethrow_exception(error_);
  }

  // Stragglers posted after a receiver exited are all stamped > t; file
  // them so the next run_until (or teardown) sees them.
  for (std::size_t i = 0; i < K; ++i) drain(i);
  {
    std::lock_guard<std::mutex> lock(overflow_mu_);
    for (std::size_t i = 0; i < K; ++i) {
      for (auto& m : overflow_[i])
        sims_[i]->at_keyed(m.at, m.tie, m.exec_owner, std::move(m.fn));
      overflow_[i].clear();
    }
  }
  // Land everyone exactly on the barrier (executes nothing: every event
  // <= t already ran).
  for (std::size_t i = 0; i < K; ++i) sims_[i]->run_until(t);
}

}  // namespace jtp::sim
