// Minimal CSV trace writer for experiment outputs.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace jtp::sim {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::initializer_list<std::string> cols);

  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& values);

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t n_cols_;
};

}  // namespace jtp::sim
