// Tabular experiment output: named columns, typed rows, CSV serialization.
//
// Series is the one description of a result table that every consumer
// shares: the exp-layer Report renders it as a paper-style stdout table,
// and write_csv() emits the machine-checkable form that the committed
// bench/baselines/ CSVs (and tools/compare_bench_csv.py) consume. A
// CI-bearing column renders as "mean ±hw" in tables but expands into two
// CSV columns (`name`, `name_ci95`) so the tolerance checker can use the
// half-width instead of guessing a band.
#pragma once

#include <fstream>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace jtp::sim {

// RFC-4180 quoting: wraps the field in quotes (doubling embedded quotes)
// when it contains a comma, quote, or newline; returns it untouched
// otherwise.
std::string csv_escape(const std::string& field);

struct Column {
  std::string name;
  int precision = 3;  // digits after the decimal point for number cells
  bool ci = false;    // cells carry a 95% CI half-width

  Column(std::string n, int prec = 3, bool with_ci = false)
      : name(std::move(n)), precision(prec), ci(with_ci) {}
  Column(const char* n, int prec = 3, bool with_ci = false)
      : name(n), precision(prec), ci(with_ci) {}
};

// One table cell: a number, a mean with a CI half-width, or raw text.
class Cell {
 public:
  enum class Kind { kNumber, kCi, kText };

  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  Cell(T v) : kind_(Kind::kNumber), mean_(static_cast<double>(v)) {}
  Cell(double mean, double ci95)
      : kind_(Kind::kCi), mean_(mean), ci_(ci95) {}
  Cell(std::string text) : kind_(Kind::kText), text_(std::move(text)) {}
  Cell(const char* text) : kind_(Kind::kText), text_(text) {}

  Kind kind() const { return kind_; }
  double mean() const { return mean_; }
  double ci95() const { return ci_; }
  const std::string& text() const { return text_; }

  // "12.300" / "12.300 ±0.400" / verbatim text.
  std::string table_text(int precision) const;
  // CSV fields this cell contributes: one, or two for a CI column.
  std::string csv_value(int precision) const;
  std::string csv_ci_value(int precision) const;

 private:
  Kind kind_;
  double mean_ = 0.0;
  double ci_ = 0.0;
  std::string text_;
};

// An in-memory result table with a fixed schema.
class Series {
 public:
  explicit Series(std::vector<Column> cols);

  const std::vector<Column>& columns() const { return cols_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  // Appends one row; throws std::invalid_argument on arity mismatch or a
  // CI cell in a non-CI column (a plain number in a CI column is fine —
  // its half-width serializes as 0).
  void append(std::vector<Cell> row);

  // Header + all rows, escaped; CI columns expand to `name`,`name_ci95`.
  void write_csv(std::ostream& os) const;
  // The two building blocks of write_csv, exposed so streaming consumers
  // (exp::Report) emit byte-identical CSV without buffering twice.
  void write_csv_header(std::ostream& os) const;
  void write_csv_row(std::ostream& os, const std::vector<Cell>& row) const;
  // Convenience: open `path`, write, return false on I/O failure.
  bool write_csv_file(const std::string& path) const;

 private:
  std::vector<Column> cols_;
  std::vector<std::vector<Cell>> rows_;
};

// Streaming CSV writer for incremental traces (e.g. per-sample monitor
// dumps) that would be wasteful to buffer in a Series. Escapes text rows.
class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> cols);
  CsvWriter(const std::string& path, std::initializer_list<std::string> cols);

  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& values);

  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t n_cols_;
};

}  // namespace jtp::sim
