// The simulation executive: clock + event loop.
//
// Components schedule callbacks with schedule()/at() and read the clock via
// now(). run_until() advances virtual time; there is no wall-clock coupling.
//
// schedule()/at() accept any void() callable and store it without heap
// allocation in the steady state (see event_queue.h / small_fn.h); the
// pool occupancy behind that claim is readable via event_pool_stats() /
// callback_spill_stats().
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace jtp::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` after `delay` seconds (>= 0). Returns a cancellable id.
  template <typename F>
  EventId schedule(Time delay, F&& fn) {
    if (delay < 0)
      throw std::invalid_argument("Simulator::schedule: negative delay");
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` at absolute time `at` (>= now()).
  template <typename F>
  EventId at(Time at, F&& fn) {
    if (at < now_)
      throw std::invalid_argument("Simulator::at: time in the past");
    return queue_.push(at, std::forward<F>(fn));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  // Runs events until the queue drains or the clock passes `t`.
  // Events at exactly `t` are executed. Returns the number of events run.
  std::uint64_t run_until(Time t);

  // Runs until the queue drains.
  std::uint64_t run() { return run_until(std::numeric_limits<Time>::max()); }

  // Drops all pending events and rewinds the clock to zero. Pooled event
  // slots and spill blocks are retained, so a reset-and-rerun reuses the
  // previous run's capacity instead of reallocating it.
  void reset();

  std::uint64_t events_executed() const { return executed_; }
  bool pending() const { return !queue_.empty(); }

  PoolStats event_pool_stats() const { return queue_.slot_stats(); }
  const PoolStats& callback_spill_stats() const {
    return queue_.spill_stats();
  }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
};

}  // namespace jtp::sim
