// The simulation executive: clock + event loop.
//
// Components schedule callbacks with schedule()/at() and read the clock via
// now(). run_until() advances virtual time; there is no wall-clock coupling.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace jtp::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` after `delay` seconds (>= 0). Returns a cancellable id.
  EventId schedule(Time delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `at` (>= now()).
  EventId at(Time at, std::function<void()> fn);

  void cancel(EventId id) { queue_.cancel(id); }

  // Runs events until the queue drains or the clock passes `t`.
  // Events at exactly `t` are executed. Returns the number of events run.
  std::uint64_t run_until(Time t);

  // Runs until the queue drains.
  std::uint64_t run() { return run_until(std::numeric_limits<Time>::max()); }

  std::uint64_t events_executed() const { return executed_; }
  bool pending() const { return !queue_.empty(); }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
};

}  // namespace jtp::sim
