// The simulation executive: clock + event loop.
//
// Components schedule callbacks with schedule()/at() and read the clock via
// now(). run_until() advances virtual time; there is no wall-clock coupling.
//
// schedule()/at() accept any void() callable and store it without heap
// allocation in the steady state (see event_queue.h / small_fn.h); the
// pool occupancy behind that claim is readable via event_pool_stats() /
// callback_spill_stats().
//
// Deterministic event keys. Every event is ordered by (time, tie) where
// tie = (owner << kOwnerShift) | per-owner sequence number. The *owner*
// is a small integer naming the logical entity whose causal stream the
// event belongs to (the sharded network uses node-id + 1; 0 is the
// root/setup stream). While an event runs, context() is set to the
// event's exec_owner, and schedule()/at() draw their tie from that
// stream — so the key of every event is a function of its owner's local
// history alone, never of how streams from different owners interleave
// in one queue. That is what makes the order shard-invariant: partition
// the owners across K simulators and each owner draws the exact same
// keys it would draw in one, so merging the per-shard event sequences
// by (time, tie) reproduces the single-simulator order byte for byte.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace jtp::sim {

class Simulator {
 public:
  // Tie layout: owner in the high bits, per-owner sequence below. 2^40
  // draws per owner before overflow — unreachable in practice.
  static constexpr unsigned kOwnerShift = 40;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` after `delay` seconds (>= 0). Returns a cancellable id.
  // The tie is drawn from the current context's stream and the event
  // inherits the current context as its exec_owner.
  template <typename F>
  EventId schedule(Time delay, F&& fn) {
    if (delay < 0)
      throw std::invalid_argument("Simulator::schedule: negative delay");
    return queue_.push_keyed(now_ + delay, draw_tie(ctx_), ctx_,
                             std::forward<F>(fn));
  }

  // Schedules `fn` at absolute time `at` (>= now()).
  template <typename F>
  EventId at(Time at, F&& fn) {
    if (at < now_)
      throw std::invalid_argument("Simulator::at: time in the past");
    return queue_.push_keyed(at, draw_tie(ctx_), ctx_, std::forward<F>(fn));
  }

  // Schedules with an explicit (tie, exec_owner) key — no draw. This is
  // the cross-shard injection point: the sender's simulator draws the
  // tie, the message carries it, and the receiving simulator files the
  // event under exactly that key.
  template <typename F>
  EventId at_keyed(Time at, std::uint64_t tie, std::uint32_t exec_owner,
                   F&& fn) {
    if (at < now_)
      throw std::invalid_argument("Simulator::at_keyed: time in the past");
    return queue_.push_keyed(at, tie, exec_owner, std::forward<F>(fn));
  }

  // schedule() for a pre-built SmallFn (see Env::schedule): the callable
  // was already type-erased against spill_pool(), so it goes straight
  // into the event slot without re-wrapping.
  EventId schedule_fn(Time delay, SmallFn&& fn) {
    if (delay < 0)
      throw std::invalid_argument("Simulator::schedule_fn: negative delay");
    return queue_.push_keyed_fn(now_ + delay, draw_tie(ctx_), ctx_,
                                std::move(fn));
  }

  // Draws the next tie key from `owner`'s stream. Deterministic: the
  // n-th draw for an owner is always (owner << kOwnerShift) | n.
  std::uint64_t draw_tie(std::uint32_t owner) {
    if (owner >= seq_.size()) seq_.resize(owner + 1, 0);
    return (static_cast<std::uint64_t>(owner) << kOwnerShift) | seq_[owner]++;
  }

  // The owner whose event is currently executing (0 outside the run
  // loop). Settable for tests and setup code that schedules on behalf of
  // a specific owner.
  std::uint32_t context() const { return ctx_; }
  void set_context(std::uint32_t owner) { ctx_ = owner; }

  void cancel(EventId id) { queue_.cancel(id); }

  // Runs events until the queue drains or the clock passes `t`.
  // Events at exactly `t` are executed. Returns the number of events run.
  std::uint64_t run_until(Time t);

  // Runs until the queue drains.
  std::uint64_t run() { return run_until(std::numeric_limits<Time>::max()); }

  // Pops and executes exactly one event (requires pending()); the
  // sharded runner's horizon loop steps the queue with this.
  void step();

  // Time of the earliest pending event. Requires pending().
  Time next_time() const { return queue_.next_time(); }

  // Advances the clock without executing anything (t >= now()); the
  // sharded runner uses it to land every shard exactly on the barrier.
  void advance_to(Time t) {
    if (t < now_)
      throw std::invalid_argument("Simulator::advance_to: time in the past");
    now_ = t;
  }

  // Drops all pending events and rewinds the clock to zero. Pooled event
  // slots and spill blocks are retained, so a reset-and-rerun reuses the
  // previous run's capacity instead of reallocating it.
  void reset();

  std::uint64_t events_executed() const { return executed_; }
  bool pending() const { return !queue_.empty(); }

  // True if any pending event executes as `owner` (node migration's
  // quiescence check; O(pending), barrier-time only).
  bool has_pending_owner(std::uint32_t owner) const {
    return queue_.has_owner(owner);
  }

  PoolStats event_pool_stats() const { return queue_.slot_stats(); }
  const PoolStats& callback_spill_stats() const {
    return queue_.spill_stats();
  }
  SpillPool& spill_pool() { return queue_.spill(); }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
  std::uint32_t ctx_ = 0;
  std::vector<std::uint64_t> seq_;  // per-owner tie counters
};

}  // namespace jtp::sim
