// SmallFn: a move-only, type-erased void() callable with small-buffer
// storage, built for the event hot path.
//
// Every simulated event used to carry a std::function<void()>, whose
// small-object buffer (16 bytes in libstdc++) is too small for the
// delivery closures, so the steady-state event loop heap-allocated once
// per event. SmallFn inlines up to kInlineBytes of capture — sized so
// every in-tree closure (the largest is the MAC delivery closure: this +
// a pooled packet handle + two node ids) fits without allocating. A
// callable that does not fit falls back to a fixed-size block from a
// SpillPool freelist, so even oversized captures stop allocating once
// the pool has warmed up; only captures beyond SpillPool::kBlockBytes
// ever reach operator new, and the pool counts them.
//
// Lifetime contract: a spilled SmallFn borrows its block from the pool it
// was created with, so the pool must outlive every SmallFn built on it.
// The EventQueue owns one SpillPool and destroys all pending events
// before it; popped events are executed and dropped inside the run loop,
// never stored.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/stats.h"

namespace jtp::sim {

// Freelist of fixed-size callback blocks. Single-threaded, like
// everything else hanging off one Simulator.
class SpillPool {
 public:
  static constexpr std::size_t kBlockBytes = 256;

  SpillPool() = default;
  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;
  ~SpillPool() {
    assert(stats_.in_use == 0 && "spilled callbacks outlived their pool");
    while (free_ != nullptr) {
      Block* b = free_->next;
      ::operator delete(free_);
      free_ = b;
    }
  }

  void* acquire(std::size_t bytes) {
    if (bytes > kBlockBytes) {
      // Pass-through: the pool never owns oversize blocks, so they are
      // excluded from capacity/in_use/high_water (which describe pool
      // blocks only) and recorded as escapes instead.
      ++stats_.oversize_allocs;
      return ::operator new(bytes);
    }
    ++stats_.in_use;
    if (stats_.in_use > stats_.high_water) stats_.high_water = stats_.in_use;
    if (free_ != nullptr) {
      Block* b = free_;
      free_ = b->next;
      ++stats_.reuses;
      return b;
    }
    ++stats_.heap_allocs;
    ++stats_.capacity;
    return ::operator new(kBlockBytes);
  }

  void release(void* p, std::size_t bytes) {
    if (bytes > kBlockBytes) {
      ::operator delete(p);
      return;
    }
    assert(stats_.in_use > 0);
    --stats_.in_use;
    Block* b = static_cast<Block*>(p);
    b->next = free_;
    free_ = b;
  }

  const PoolStats& stats() const { return stats_; }

 private:
  struct Block {
    Block* next;
  };
  Block* free_ = nullptr;
  PoolStats stats_;
};

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept {}

  template <typename F>
  SmallFn(F&& f, SpillPool& pool) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "SmallFn callable must be invocable as void()");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    if constexpr (sizeof(D) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &inline_vtable<D>;
    } else {
      void* mem = pool.acquire(sizeof(D));
      ::new (mem) D(std::forward<F>(f));
      spill_ = mem;
      pool_ = &pool;
      vt_ = &spill_vtable<D>;
    }
  }

  SmallFn(SmallFn&& o) noexcept { steal(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() {
    assert(vt_ != nullptr);
    vt_->invoke(target());
  }

  // Destroys the held callable (returning any spill block to its pool)
  // and leaves the SmallFn empty.
  void reset() noexcept {
    if (vt_ == nullptr) return;
    vt_->destroy(target());
    if (pool_ != nullptr) pool_->release(spill_, vt_->size);
    vt_ = nullptr;
    pool_ = nullptr;
  }

  bool spilled() const { return pool_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct the callable from `src` storage into `dst` storage
    // and destroy the source (inline storage only; spilled callables
    // move by pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    std::size_t size;
  };

  template <typename D>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      sizeof(D)};

  template <typename D>
  static constexpr VTable spill_vtable = {
      [](void* p) { (*static_cast<D*>(p))(); },
      nullptr,  // spilled callables relocate by pointer swap
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      sizeof(D)};

  void* target() { return pool_ != nullptr ? spill_ : buf_; }

  void steal(SmallFn& o) noexcept {
    vt_ = o.vt_;
    pool_ = o.pool_;
    if (vt_ == nullptr) return;
    if (pool_ != nullptr) {
      spill_ = o.spill_;
    } else {
      vt_->relocate(buf_, o.buf_);
    }
    o.vt_ = nullptr;
    o.pool_ = nullptr;
  }

  const VTable* vt_ = nullptr;
  SpillPool* pool_ = nullptr;  // non-null iff the callable is spilled
  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* spill_;
  };
};

}  // namespace jtp::sim
