#include "sim/random.h"

#include <cmath>
#include <stdexcept>

namespace jtp::sim {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  // FNV-1a, then one splitmix round for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

Rng Rng::derive(std::string_view label, std::uint64_t index) const {
  const std::uint64_t child =
      splitmix64(seed_ ^ hash_label(label) ^ splitmix64(index + 1));
  Rng r(child);
  r.seed_ = child;
  return r;
}

double Rng::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform: hi < lo");
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u = uniform();
  if (u <= 0) u = 1e-300;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

std::uint64_t Rng::integer(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::integer: bound == 0");
  std::uniform_int_distribution<std::uint64_t> d(0, bound - 1);
  return d(engine_);
}

int Rng::geometric(double p_success) {
  if (p_success <= 0.0 || p_success > 1.0)
    throw std::invalid_argument("Rng::geometric: p out of (0,1]");
  int n = 1;
  while (!bernoulli(p_success)) ++n;
  return n;
}

}  // namespace jtp::sim
