// ShardedRunner: conservative-lookahead parallel execution of K
// Simulators inside one run (Chandy–Misra–Bryant, shared-memory form).
//
// Each shard owns one Simulator and runs it on its own thread; the
// one-Simulator-per-thread contract (docs/ARCHITECTURE.md) is preserved
// because a shard's queue, pools, and model state are touched only by
// its worker. Shards interact exclusively through bounded SPSC
// mailboxes of timestamped messages, and the protocol guarantees that
// every simulator executes its events in exactly the (time, tie-key)
// order a single merged queue would — determinism is the contract, the
// parallelism is just overlap of provably-independent work.
//
// The safety argument, in terms of the code below:
//
//  * Lookahead L: the caller promises that a shard executing an event
//    at virtual time `s` posts cross-shard events timestamped >= s + L
//    (in the network, L = slot_duration: a MAC attempt at slot start
//    delivers one airtime later, and control handoffs are deferred the
//    same amount).
//  * Each shard publishes a lower bound `lb[i]` on every virtual time
//    it will ever execute again: lb = min(own next event time, own
//    horizon). Publishing min(next, horizon) rather than `next` alone
//    keeps the bound sound when the queue is empty and doubles as the
//    null message — an idle shard's bound climbs by L per round, so
//    quiet boundaries never stall anyone.
//  * A shard may execute strictly below horizon = min over peers of
//    lb[peer] + L. Order per iteration: read peers' bounds (acquire),
//    drain mailboxes, execute, publish own bound (release). A message
//    missed by the drain was pushed after its sender's publish that the
//    acquire read — so it is stamped >= that bound + L >= horizon and
//    cannot be needed below the horizon just computed.
//  * A shard exits once its own queue holds nothing <= t and its
//    horizon exceeds t (then publishes +inf so peers never wait on it).
//    Any message posted to an exited shard is stamped > t by the same
//    horizon argument; run_until() drains leftovers into the target
//    queues after joining, so nothing is lost across repeated runs.
//
// K = 1 never constructs a runner: Network falls through to the plain
// single-threaded Simulator::run_until, byte-identical to the pre-shard
// code path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace jtp::sim {

class ShardedRunner {
 public:
  struct Config {
    Time lookahead = 0.0;            // L, must be > 0
    std::size_t ring_capacity = 4096;  // per ordered shard pair
  };

  // `sims` must outlive the runner; sims.size() >= 2.
  ShardedRunner(std::vector<Simulator*> sims, Config cfg);
  ~ShardedRunner();
  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  // Posts an event to shard `to`, keyed exactly as the sender drew it.
  // Called from shard `from`'s worker thread while run_until is live
  // (SPSC: one producer per ordered pair). `at` must be >= sender's
  // current time + lookahead.
  void post(std::size_t from, std::size_t to, Time at, std::uint64_t tie,
            std::uint32_t exec_owner, std::function<void()> fn);

  // Runs every shard's events with time <= t (worker threads), then
  // lands all clocks exactly on t. Serializable: call repeatedly with
  // increasing t.
  void run_until(Time t);

  std::size_t shard_count() const { return sims_.size(); }
  Time lookahead() const { return cfg_.lookahead; }

  // Total cross-shard messages posted (diagnostic; relaxed counter).
  std::uint64_t messages_posted() const {
    return posted_.load(std::memory_order_relaxed);
  }

 private:
  struct Msg {
    Time at = 0.0;
    std::uint64_t tie = 0;
    std::uint32_t exec_owner = 0;
    std::function<void()> fn;
  };

  // Bounded single-producer single-consumer ring. The producer is the
  // sending shard's worker, the consumer the receiving shard's worker
  // (or the coordinating thread after join).
  class SpscRing {
   public:
    explicit SpscRing(std::size_t capacity) : buf_(capacity) {}
    bool try_push(Msg&& m);
    bool try_pop(Msg& out);

   private:
    std::vector<Msg> buf_;
    std::atomic<std::uint64_t> head_{0};  // consumer index
    std::atomic<std::uint64_t> tail_{0};  // producer index
  };

  // Cache-line padding: each shard's bound is written by one thread and
  // read by all others every iteration.
  struct alignas(64) Bound {
    std::atomic<Time> v{0.0};
  };

  SpscRing& ring(std::size_t from, std::size_t to) {
    return *rings_[from * sims_.size() + to];
  }

  void worker(std::size_t i, Time t);
  bool drain(std::size_t i);  // inject everything inbound; true if any

  std::vector<Simulator*> sims_;
  Config cfg_;
  std::vector<std::unique_ptr<SpscRing>> rings_;  // [from * K + to]
  std::vector<Bound> lb_;
  std::vector<std::atomic<bool>> exited_;

  // Overflow lane for the ring-full-after-receiver-exited corner: such
  // messages are all stamped > t and only read after join, so a mutex
  // is fine here.
  std::mutex overflow_mu_;
  std::vector<std::vector<Msg>> overflow_;  // per destination shard

  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;

  std::atomic<std::uint64_t> posted_{0};
};

}  // namespace jtp::sim
