#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace jtp::sim {

EventId Simulator::schedule(Time delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: negative delay");
  return queue_.push(now_ + delay, std::move(fn));
}

EventId Simulator::at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("Simulator::at: time in the past");
  return queue_.push(at, std::move(fn));
}

std::uint64_t Simulator::run_until(Time t) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= t) {
    auto ev = queue_.pop();
    assert(ev.at >= now_);
    now_ = ev.at;
    ev.fn();
    ++ran;
    ++executed_;
  }
  if (now_ < t && t < std::numeric_limits<Time>::max()) now_ = t;
  return ran;
}

}  // namespace jtp::sim
