#include "sim/simulator.h"

#include <cassert>

namespace jtp::sim {

std::uint64_t Simulator::run_until(Time t) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= t) {
    auto ev = queue_.pop();
    assert(ev.at >= now_);
    now_ = ev.at;
    ev.fn();
    ++ran;
    ++executed_;
  }
  if (now_ < t && t < std::numeric_limits<Time>::max()) now_ = t;
  return ran;
}

void Simulator::reset() {
  queue_.clear();
  now_ = kTimeZero;
  executed_ = 0;
}

}  // namespace jtp::sim
