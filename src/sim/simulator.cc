#include "sim/simulator.h"

#include <cassert>

namespace jtp::sim {

void Simulator::step() {
  assert(!queue_.empty());
  auto ev = queue_.pop();
  assert(ev.at >= now_);
  now_ = ev.at;
  ctx_ = ev.exec_owner;
  ev.fn();
  ++executed_;
}

std::uint64_t Simulator::run_until(Time t) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
    ++ran;
  }
  ctx_ = 0;
  if (now_ < t && t < std::numeric_limits<Time>::max()) now_ = t;
  return ran;
}

void Simulator::reset() {
  queue_.clear();
  now_ = kTimeZero;
  executed_ = 0;
  ctx_ = 0;
  seq_.clear();
}

}  // namespace jtp::sim
