// Simulation time.
//
// Time is a double in seconds. All modules treat it as opaque except for
// arithmetic; keeping a single alias makes a later switch to integral
// ticks mechanical.
#pragma once

namespace jtp::sim {

using Time = double;

inline constexpr Time kTimeZero = 0.0;

}  // namespace jtp::sim
